// Public VOPP API: the paper's View-Oriented Parallel Programming model.
//
// A Cluster owns a simulated machine (engine, network, one DSM runtime per
// node). The user defines views, then runs one program coroutine per node:
//
//   vopp::Cluster cluster({.nprocs = 16, .protocol = dsm::Protocol::kVcSd});
//   auto data = cluster.defineView(bytes);
//   cluster.run([&](vopp::Node& node) -> sim::Task<void> {
//     co_await node.acquireView(data);
//     ... touch + access shared memory ...
//     co_await node.releaseView(data);
//     co_await node.barrier();
//   });
//
// The VOPP primitives map 1:1 to the paper's: acquire_view / release_view
// (exclusive), acquire_Rview / release_Rview (shared, nestable), barriers
// (pure synchronization under VC), and merge_views. Traditional DSM
// programs use acquireLock/releaseLock + barriers (LRC_d only).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dsm/lrc.hpp"
#include "dsm/runtime.hpp"
#include "dsm/vc.hpp"
#include "net/network.hpp"
#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/diagnose.hpp"
#include "obs/page_heat.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vodsm::vopp {

struct ClusterOptions {
  int nprocs = 4;
  dsm::Protocol protocol = dsm::Protocol::kVcSd;
  net::NetConfig net;
  dsm::DsmCosts costs;
  // Barrier algorithm / view-home sharding selection; the defaults keep
  // every run byte-identical to the pre-scaling (centralized) protocol.
  dsm::ProtoOptions proto;
  uint64_t seed = 42;
  // Engine worker threads (sim::resolveSimThreads semantics: 1 = serial
  // reference, N > 1 = conservative parallel schedule with bit-identical
  // results, 0 = VODSM_SIM_THREADS or serial).
  int sim_threads = 0;
  // Caller-owned event recorder, threaded through every layer of the run
  // (programs, protocol engines, transport, network). Null disables tracing;
  // recording never charges simulated time, so traced and untraced runs
  // produce identical results.
  obs::TraceRecorder* trace = nullptr;
  // Caller-owned counter/gauge registry, threaded the same way (protocol
  // engines, network, VOPP primitives). Null disables metrics; like tracing,
  // metering never perturbs simulated results.
  obs::MetricsRegistry* metrics = nullptr;
  // Caller-owned fault plan. Null (or an empty plan) installs no injector,
  // so fault-free runs stay byte-identical; otherwise the cluster binds the
  // plan to this run's seed and wires it into the network and every node
  // clock (straggler rules).
  const net::FaultPlan* faults = nullptr;
};

class Cluster;

// Per-node program environment: every method charges simulated time and/or
// suspends on simulated communication.
class Node {
 public:
  Node(Cluster& cluster, dsm::NodeCtx& ctx, dsm::Runtime& rt)
      : cluster_(cluster), ctx_(ctx), rt_(rt) {}

  int id() const { return static_cast<int>(ctx_.id); }
  int nprocs() const { return ctx_.nprocs; }
  sim::Time now() const { return ctx_.clock.now(); }

  // Account local CPU work (application compute).
  void charge(sim::Time t) { ctx_.clock.charge(t); }
  void chargeOps(uint64_t ops, sim::Time per_op) {
    ctx_.clock.charge(static_cast<sim::Time>(ops) * per_op);
  }

  // --- VOPP primitives ---
  sim::Task<void> acquireView(dsm::ViewId v) {
    beginSpan(obs::Cat::kAcquireView, v, 0);
    co_await rt_.acquireView(v, /*readonly=*/false);
    metricAdd(obs::Metric::kHeldViews, 1);
    endSpan(obs::Cat::kAcquireView, v, 0);
  }
  sim::Task<void> releaseView(dsm::ViewId v) {
    beginSpan(obs::Cat::kReleaseView, v, 0);
    co_await rt_.releaseView(v, /*readonly=*/false);
    metricAdd(obs::Metric::kHeldViews, -1);
    endSpan(obs::Cat::kReleaseView, v, 0);
  }
  sim::Task<void> acquireRview(dsm::ViewId v) {
    beginSpan(obs::Cat::kAcquireView, v, 1);
    co_await rt_.acquireView(v, /*readonly=*/true);
    metricAdd(obs::Metric::kHeldViews, 1);
    endSpan(obs::Cat::kAcquireView, v, 1);
  }
  sim::Task<void> releaseRview(dsm::ViewId v) {
    beginSpan(obs::Cat::kReleaseView, v, 1);
    co_await rt_.releaseView(v, /*readonly=*/true);
    metricAdd(obs::Metric::kHeldViews, -1);
    endSpan(obs::Cat::kReleaseView, v, 1);
  }
  sim::Task<void> barrier(dsm::BarrierId b = 0) {
    beginSpan(obs::Cat::kBarrier, b);
    metricAdd(obs::Metric::kBlockedAtBarrier, 1);
    co_await rt_.barrier(b);
    metricAdd(obs::Metric::kBlockedAtBarrier, -1);
    endSpan(obs::Cat::kBarrier, b);
  }

  // Bring every view up to date on this node (paper's merge_views:
  // "expensive but convenient").
  sim::Task<void> mergeViews();

  // --- traditional DSM primitives (LRC_d) ---
  sim::Task<void> acquireLock(dsm::LockId l) {
    beginSpan(obs::Cat::kAcquireLock, l);
    co_await rt_.acquireLock(l);
    metricAdd(obs::Metric::kHeldLocks, 1);
    endSpan(obs::Cat::kAcquireLock, l);
  }
  sim::Task<void> releaseLock(dsm::LockId l) {
    co_await rt_.releaseLock(l);
    metricAdd(obs::Metric::kHeldLocks, -1);
  }

  // --- shared memory access ---
  // Declare an access range; takes the simulated page faults (the analogue
  // of the SIGSEGV handler running page by page).
  sim::Task<void> touchRead(size_t offset, size_t len) {
    co_await rt_.touchRead(offset, len);
  }
  sim::Task<void> touchWrite(size_t offset, size_t len) {
    co_await rt_.touchWrite(offset, len);
  }

  // Raw access to this node's copy (valid only after the matching touch).
  MutByteSpan mem(size_t offset, size_t len) {
    return ctx_.store.range(offset, len);
  }
  ByteSpan memView(size_t offset, size_t len) const {
    return ctx_.store.rangeView(offset, len);
  }

  // Copy shared -> local with faulting and memcpy cost.
  sim::Task<void> copyOut(size_t offset, MutByteSpan dst) {
    co_await touchRead(offset, dst.size());
    ByteSpan src = memView(offset, dst.size());
    std::copy(src.begin(), src.end(), dst.begin());
    chargeCopy(dst.size());
  }
  // Copy local -> shared with faulting and memcpy cost.
  sim::Task<void> copyIn(size_t offset, ByteSpan src) {
    co_await touchWrite(offset, src.size());
    MutByteSpan dst = mem(offset, src.size());
    std::copy(src.begin(), src.end(), dst.begin());
    chargeCopy(src.size());
  }

  dsm::NodeCtx& ctx() { return ctx_; }
  Cluster& cluster() { return cluster_; }

 private:
  void chargeCopy(size_t bytes) {
    ctx_.clock.charge(ctx_.costs.copy_per_kb *
                      static_cast<sim::Time>(bytes / 1024 + 1));
  }

  void beginSpan(obs::Cat c, uint64_t a0, uint64_t a1 = 0) {
    if (auto* t = ctx_.trace) t->begin(ctx_.id, c, ctx_.clock.now(), a0, a1);
  }
  void endSpan(obs::Cat c, uint64_t a0, uint64_t a1 = 0) {
    if (auto* t = ctx_.trace) t->end(ctx_.id, c, ctx_.clock.now(), a0, a1);
  }
  void metricAdd(obs::Metric m, int64_t delta) {
    if (auto* r = ctx_.metrics) r->add(ctx_.id, m, delta, ctx_.clock.now());
  }

  Cluster& cluster_;
  dsm::NodeCtx& ctx_;
  dsm::Runtime& rt_;
};

// Typed handle to a shared-memory range on one node.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(Node& node, size_t byte_offset, size_t count)
      : node_(&node), offset_(byte_offset), count_(count) {}

  size_t size() const { return count_; }
  size_t byteOffset() const { return offset_; }

  sim::Task<void> touchRead(size_t first, size_t n) {
    VODSM_DCHECK(first + n <= count_);
    co_await node_->touchRead(offset_ + first * sizeof(T), n * sizeof(T));
  }
  sim::Task<void> touchWrite(size_t first, size_t n) {
    VODSM_DCHECK(first + n <= count_);
    co_await node_->touchWrite(offset_ + first * sizeof(T), n * sizeof(T));
  }

  // Raw element access into this node's local copy; only valid after the
  // covering touch (debug builds check the page protection).
  T* data() {
    return reinterpret_cast<T*>(
        node_->mem(offset_, count_ * sizeof(T)).data());
  }
  const T* data() const {
    return reinterpret_cast<const T*>(
        node_->memView(offset_, count_ * sizeof(T)).data());
  }
  T& operator[](size_t i) {
    VODSM_DCHECK(i < count_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    VODSM_DCHECK(i < count_);
    return data()[i];
  }

 private:
  Node* node_ = nullptr;
  size_t offset_ = 0;
  size_t count_ = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts) : opts_(std::move(opts)) {
    VODSM_CHECK(opts_.nprocs > 0);
  }

  // --- layout (before run) ---
  // Define a view. `home` optionally pins the view's manager node: pin it
  // to the view's main consumer so VC_sd's release-time diff pushes land
  // where they will be read (paper Section 3.6 spirit).
  dsm::ViewId defineView(size_t bytes,
                         std::optional<dsm::NodeId> home = std::nullopt) {
    VODSM_CHECK_MSG(!started_, "defineView after run started");
    return views_.defineView(bytes, home);
  }
  size_t allocShared(size_t bytes, size_t align = 8) {
    VODSM_CHECK_MSG(!started_, "allocShared after run started");
    return views_.allocRaw(bytes, align);
  }
  const dsm::ViewMap& views() const { return views_; }
  size_t viewOffset(dsm::ViewId v) const { return views_.view(v).offset; }

  // --- execution ---
  using Program = std::function<sim::Task<void>(Node&)>;
  void run(const Program& program);

  // --- results (after run) ---
  int nprocs() const { return opts_.nprocs; }
  dsm::Protocol protocol() const { return opts_.protocol; }
  double seconds() const { return sim::toSeconds(finish_time_); }
  sim::Time finishTime() const { return finish_time_; }
  dsm::DsmStats dsmStats() const;
  // Folds the recorded trace into per-node time buckets. Empty (enabled() ==
  // false) when the run was not traced.
  obs::Breakdown breakdown() const {
    if (!opts_.trace) return {};
    return obs::foldBreakdown(*opts_.trace, opts_.nprocs, finish_time_);
  }
  // Walks the critical path of the recorded trace. Empty when untraced.
  obs::CriticalPath criticalPath() const {
    if (!opts_.trace) return {};
    return obs::computeCriticalPath(*opts_.trace, opts_.nprocs, finish_time_);
  }
  // Folds the recorded trace into per-page contention rows. Empty when
  // untraced.
  obs::PageHeat pageHeat() const {
    if (!opts_.trace) return {};
    return obs::foldPageHeat(*opts_.trace);
  }
  const net::NetStats& netStats() const {
    VODSM_CHECK(network_ != nullptr);
    return network_->stats();
  }
  // One node's transport shard (deliveries count against the receiver, so
  // shard 0 exposes e.g. the barrier manager's downlink traffic).
  const net::NetStats& netStatsFor(int node) const {
    VODSM_CHECK(network_ != nullptr);
    return network_->statsFor(static_cast<net::NodeId>(node));
  }
  // Per-trunk utilization of a multi-switch fabric (empty on the star).
  std::vector<net::Network::TrunkUse> trunkStats() const {
    VODSM_CHECK(network_ != nullptr);
    return network_->trunkStats();
  }
  // Aggregated counter/gauge view of the run. Empty (enabled() == false)
  // when the run was not metered.
  obs::MetricsSummary metricsSummary() const {
    if (!opts_.metrics) return {};
    return opts_.metrics->summary();
  }
  // Runs the diagnosis pass catalog over the recorded trace (and metrics
  // summary when metered). Empty when untraced. Defined in cluster.cpp,
  // where the dsm message classifier and the run's NetConfig are in scope —
  // obs itself stays below those layers.
  obs::Diagnosis diagnosis() const;
  // Builds a persisted run profile from the recorded trace, metrics summary
  // and transport counters. Empty when untraced. Defined in cluster.cpp,
  // where net::NetStats is in scope — obs itself stays below net.
  obs::RunProfile runProfile() const;
  // Inspect a node's final memory (for result validation).
  ByteSpan memoryOf(int node, size_t offset, size_t len) const {
    return ctxs_.at(static_cast<size_t>(node))->store.rangeView(offset, len);
  }

 private:
  std::unique_ptr<dsm::Runtime> makeRuntime(dsm::NodeCtx& ctx) const;

  ClusterOptions opts_;
  dsm::ViewMap views_;
  bool started_ = false;

  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::vector<std::unique_ptr<dsm::NodeCtx>> ctxs_;
  std::vector<std::unique_ptr<dsm::Runtime>> runtimes_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::Time finish_time_ = 0;
  // Last member: node-program frames abandoned by a deadlocked run must be
  // reclaimed before the engine/network/runtimes they reference go away.
  sim::TaskScope scope_;
};

}  // namespace vodsm::vopp
