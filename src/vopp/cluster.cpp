#include "vopp/cluster.hpp"

#include <algorithm>

namespace vodsm::vopp {

std::unique_ptr<dsm::Runtime> Cluster::makeRuntime(dsm::NodeCtx& ctx) const {
  switch (opts_.protocol) {
    case dsm::Protocol::kLrcDiff:
      return std::make_unique<dsm::LrcRuntime>(ctx);
    case dsm::Protocol::kVcDiff:
      return std::make_unique<dsm::VcRuntime>(ctx, /*integrated=*/false);
    case dsm::Protocol::kVcSd:
      return std::make_unique<dsm::VcRuntime>(ctx, /*integrated=*/true);
  }
  VODSM_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

void Cluster::run(const Program& program) {
  VODSM_CHECK_MSG(!started_, "Cluster::run called twice");
  started_ = true;
  VODSM_CHECK_MSG(views_.heapBytes() > 0,
                  "no shared memory defined before run");

  // One engine lane per node; the schedule (and every result) is identical
  // for any thread count. Observers that buffer per lane register before
  // any event is recorded from a worker.
  engine_.configureLanes(opts_.nprocs, opts_.sim_threads);
  if (auto* t = opts_.trace) engine_.addParallelObserver(t);
  if (auto* m = opts_.metrics) engine_.addParallelObserver(m);
  network_ = std::make_unique<net::Network>(engine_, opts_.nprocs, opts_.net,
                                            opts_.seed);
  network_->setTrace(opts_.trace);
  network_->setMetrics(opts_.metrics);
  network_->setClassifier(&dsm::classifyMsg);
  if (opts_.faults && !opts_.faults->empty()) {
    faults_ = std::make_unique<net::FaultInjector>(*opts_.faults, opts_.seed,
                                                   opts_.nprocs);
    network_->setFaults(faults_.get());
  }
  ctxs_.reserve(static_cast<size_t>(opts_.nprocs));
  runtimes_.reserve(static_cast<size_t>(opts_.nprocs));
  nodes_.reserve(static_cast<size_t>(opts_.nprocs));
  for (int i = 0; i < opts_.nprocs; ++i) {
    ctxs_.push_back(std::make_unique<dsm::NodeCtx>(
        static_cast<dsm::NodeId>(i), opts_.nprocs, engine_, *network_, views_,
        opts_.costs, opts_.trace, opts_.metrics, opts_.proto));
    if (faults_)
      ctxs_.back()->clock.setScaler(
          faults_->chargeScalerFor(static_cast<net::NodeId>(i)));
    runtimes_.push_back(makeRuntime(*ctxs_.back()));
    nodes_.push_back(
        std::make_unique<Node>(*this, *ctxs_.back(), *runtimes_.back()));
  }

  // Per-node completion slots: the finish callbacks run inside each node's
  // lane (possibly on worker threads), so each writes only its own slot and
  // the folds below happen single-threaded after the engine drains.
  std::vector<unsigned char> finished(static_cast<size_t>(opts_.nprocs), 0);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(opts_.nprocs));
  std::vector<sim::Time> done_times(static_cast<size_t>(opts_.nprocs), 0);
  for (int i = 0; i < opts_.nprocs; ++i) {
    Node& node = *nodes_[static_cast<size_t>(i)];
    if (auto* t = opts_.trace)
      t->begin(static_cast<uint32_t>(i), obs::Cat::kProgram, 0,
               static_cast<uint64_t>(i));
    // Events scheduled while the program runs to its first suspension (and
    // by the finish callback) belong to node i's lane.
    sim::Engine::LaneGuard lane(engine_, static_cast<uint32_t>(i));
    sim::spawn(scope_, program(node),
               [this, i, &finished, &errors,
                &done_times](std::exception_ptr e) {
                 finished[static_cast<size_t>(i)] = 1;
                 if (e) errors[static_cast<size_t>(i)] = e;
                 const sim::Time done =
                     ctxs_[static_cast<size_t>(i)]->clock.now();
                 if (auto* t = opts_.trace)
                   t->end(static_cast<uint32_t>(i), obs::Cat::kProgram, done,
                          static_cast<uint64_t>(i));
                 done_times[static_cast<size_t>(i)] = done;
               });
  }
  if (auto* t = opts_.trace)
    t->begin(obs::kEngineNode, obs::Cat::kEngineRun, engine_.now());
  if (auto* m = opts_.metrics) m->startSampling(engine_);
  const uint64_t engine_events = engine_.run();
  for (int i = 0; i < opts_.nprocs; ++i)
    finish_time_ = std::max(finish_time_, done_times[static_cast<size_t>(i)]);
  if (auto* t = opts_.trace)
    t->end(obs::kEngineNode, obs::Cat::kEngineRun, engine_.now(),
           engine_events);
  if (auto* m = opts_.metrics) m->closeRun(opts_.nprocs, finish_time_);

  for (int i = 0; i < opts_.nprocs; ++i)
    if (errors[static_cast<size_t>(i)])
      std::rethrow_exception(errors[static_cast<size_t>(i)]);
  for (int i = 0; i < opts_.nprocs; ++i) {
    VODSM_CHECK_MSG(finished[static_cast<size_t>(i)],
                    "deadlock: node " << i
                                      << " never finished (engine drained)");
  }
}

obs::Diagnosis Cluster::diagnosis() const {
  if (!opts_.trace) return {};
  // obs sits below net/dsm, so the diagnosis passes take the wire knowledge
  // they need as hooks wired here: the dsm message classifier (WireClass
  // mirrors net::MsgClass value-for-value, checked below) and the run's
  // undegraded frame serialization cost.
  static_assert(static_cast<int>(obs::WireClass::kAcquire) ==
                    static_cast<int>(net::MsgClass::kAcquire) &&
                static_cast<int>(obs::WireClass::kDiffRequest) ==
                    static_cast<int>(net::MsgClass::kDiffRequest) &&
                static_cast<int>(obs::WireClass::kDiffReply) ==
                    static_cast<int>(net::MsgClass::kDiffReply) &&
                static_cast<int>(obs::WireClass::kOther) ==
                    static_cast<int>(net::MsgClass::kOther),
                "WireClass must mirror net::MsgClass");
  const obs::MetricsSummary metrics = metricsSummary();
  const net::NetConfig cfg = opts_.net;
  // Trunk utilization crosses the net -> obs boundary as a plain copy so
  // the trunk-saturation pass needs no net dependency.
  std::vector<obs::TrunkUtilization> trunks;
  for (const net::Network::TrunkUse& t : trunkStats())
    trunks.push_back(obs::TrunkUtilization{t.leaf, t.spine, t.up, t.frames,
                                           t.wire_bytes, t.busy_ns});
  return obs::diagnose(
      *opts_.trace, opts_.nprocs, finish_time_,
      metrics.enabled() ? &metrics : nullptr,
      [](uint64_t type) {
        return static_cast<obs::WireClass>(
            dsm::classifyMsg(static_cast<uint16_t>(type)));
      },
      [cfg](uint64_t bytes) {
        return cfg.txTime(static_cast<size_t>(bytes));
      },
      std::move(trunks));
}

obs::RunProfile Cluster::runProfile() const {
  if (!opts_.trace) return {};
  const obs::MetricsSummary metrics = metricsSummary();
  obs::RunProfile p =
      obs::buildRunProfile(*opts_.trace, opts_.nprocs, finish_time_,
                           metrics.enabled() ? &metrics : nullptr);
  // The profile's per-class counters are keyed by kProfileClassName, whose
  // order mirrors net::MsgClass value-for-value (obs sits below net, so the
  // mirror is asserted here where both are in scope).
  static_assert(static_cast<int>(net::MsgClass::kAcquire) == 0 &&
                    static_cast<int>(net::MsgClass::kGrant) == 1 &&
                    static_cast<int>(net::MsgClass::kRelease) == 2 &&
                    static_cast<int>(net::MsgClass::kDiffRequest) == 3 &&
                    static_cast<int>(net::MsgClass::kDiffReply) == 4 &&
                    static_cast<int>(net::MsgClass::kBarrier) == 5 &&
                    static_cast<int>(net::MsgClass::kData) == 6 &&
                    static_cast<int>(net::MsgClass::kOther) == 7 &&
                    obs::kProfileClassCount == net::kMsgClassCount,
                "profile class table must mirror net::MsgClass");
  const net::NetStats& ns = netStats();
  p.has_net = true;
  for (int c = 0; c < obs::kProfileClassCount; ++c) {
    p.classes[c].messages = ns.kind[c].messages;
    p.classes[c].payload_bytes = ns.kind[c].payload_bytes;
    p.classes[c].retransmissions = ns.kind[c].retransmissions;
    p.classes[c].drops = ns.kind[c].drops;
  }
  p.net_messages = ns.messages;
  p.net_payload_bytes = ns.payload_bytes;
  p.net_retransmissions = ns.retransmissions;
  p.net_acks = ns.acks;
  p.net_ack_drops = ns.ack_drops;
  p.net_frames_sent = ns.frames_sent;
  p.net_frames_delivered = ns.frames_delivered;
  return p;
}

dsm::DsmStats Cluster::dsmStats() const {
  dsm::DsmStats total;
  for (const auto& ctx : ctxs_) total.add(ctx->stats);
  return total;
}

sim::Task<void> Node::mergeViews() {
  for (dsm::ViewId v = 0;
       v < static_cast<dsm::ViewId>(cluster_.views().viewCount()); ++v) {
    const auto& def = cluster_.views().view(v);
    co_await acquireRview(v);
    co_await touchRead(def.offset, def.bytes);
    co_await releaseRview(v);
  }
}

}  // namespace vodsm::vopp
