# Empty compiler generated dependencies file for vodsm_run.
# This may be replaced when dependencies are built.
