file(REMOVE_RECURSE
  "CMakeFiles/vodsm_run.dir/vodsm_run.cpp.o"
  "CMakeFiles/vodsm_run.dir/vodsm_run.cpp.o.d"
  "vodsm_run"
  "vodsm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
