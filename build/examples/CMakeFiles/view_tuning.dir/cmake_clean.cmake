file(REMOVE_RECURSE
  "CMakeFiles/view_tuning.dir/view_tuning.cpp.o"
  "CMakeFiles/view_tuning.dir/view_tuning.cpp.o.d"
  "view_tuning"
  "view_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
