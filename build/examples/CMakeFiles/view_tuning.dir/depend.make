# Empty dependencies file for view_tuning.
# This may be replaced when dependencies are built.
