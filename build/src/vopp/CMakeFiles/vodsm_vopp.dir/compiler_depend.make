# Empty compiler generated dependencies file for vodsm_vopp.
# This may be replaced when dependencies are built.
