file(REMOVE_RECURSE
  "libvodsm_vopp.a"
)
