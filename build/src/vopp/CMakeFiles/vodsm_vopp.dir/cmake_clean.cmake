file(REMOVE_RECURSE
  "CMakeFiles/vodsm_vopp.dir/cluster.cpp.o"
  "CMakeFiles/vodsm_vopp.dir/cluster.cpp.o.d"
  "libvodsm_vopp.a"
  "libvodsm_vopp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_vopp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
