# CMake generated Testfile for 
# Source directory: /root/repo/src/vopp
# Build directory: /root/repo/build/src/vopp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
