file(REMOVE_RECURSE
  "CMakeFiles/vodsm_mem.dir/diff.cpp.o"
  "CMakeFiles/vodsm_mem.dir/diff.cpp.o.d"
  "libvodsm_mem.a"
  "libvodsm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
