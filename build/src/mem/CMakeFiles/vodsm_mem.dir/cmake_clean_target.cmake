file(REMOVE_RECURSE
  "libvodsm_mem.a"
)
