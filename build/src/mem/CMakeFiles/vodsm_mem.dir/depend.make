# Empty dependencies file for vodsm_mem.
# This may be replaced when dependencies are built.
