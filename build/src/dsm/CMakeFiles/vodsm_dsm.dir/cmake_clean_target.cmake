file(REMOVE_RECURSE
  "libvodsm_dsm.a"
)
