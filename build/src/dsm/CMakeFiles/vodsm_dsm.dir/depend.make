# Empty dependencies file for vodsm_dsm.
# This may be replaced when dependencies are built.
