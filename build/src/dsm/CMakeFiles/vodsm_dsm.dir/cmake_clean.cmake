file(REMOVE_RECURSE
  "CMakeFiles/vodsm_dsm.dir/lrc.cpp.o"
  "CMakeFiles/vodsm_dsm.dir/lrc.cpp.o.d"
  "CMakeFiles/vodsm_dsm.dir/vc.cpp.o"
  "CMakeFiles/vodsm_dsm.dir/vc.cpp.o.d"
  "libvodsm_dsm.a"
  "libvodsm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
