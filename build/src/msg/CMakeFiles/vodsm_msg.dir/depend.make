# Empty dependencies file for vodsm_msg.
# This may be replaced when dependencies are built.
