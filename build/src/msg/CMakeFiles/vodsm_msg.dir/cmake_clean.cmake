file(REMOVE_RECURSE
  "CMakeFiles/vodsm_msg.dir/world.cpp.o"
  "CMakeFiles/vodsm_msg.dir/world.cpp.o.d"
  "libvodsm_msg.a"
  "libvodsm_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
