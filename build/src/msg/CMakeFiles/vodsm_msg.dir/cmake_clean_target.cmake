file(REMOVE_RECURSE
  "libvodsm_msg.a"
)
