file(REMOVE_RECURSE
  "CMakeFiles/vodsm_apps.dir/gauss.cpp.o"
  "CMakeFiles/vodsm_apps.dir/gauss.cpp.o.d"
  "CMakeFiles/vodsm_apps.dir/is.cpp.o"
  "CMakeFiles/vodsm_apps.dir/is.cpp.o.d"
  "CMakeFiles/vodsm_apps.dir/nn.cpp.o"
  "CMakeFiles/vodsm_apps.dir/nn.cpp.o.d"
  "CMakeFiles/vodsm_apps.dir/sor.cpp.o"
  "CMakeFiles/vodsm_apps.dir/sor.cpp.o.d"
  "libvodsm_apps.a"
  "libvodsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
