# Empty dependencies file for vodsm_apps.
# This may be replaced when dependencies are built.
