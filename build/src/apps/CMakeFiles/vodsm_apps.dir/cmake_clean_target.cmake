file(REMOVE_RECURSE
  "libvodsm_apps.a"
)
