# Empty dependencies file for test_lrc_semantics.
# This may be replaced when dependencies are built.
