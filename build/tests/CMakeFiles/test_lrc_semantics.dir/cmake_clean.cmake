file(REMOVE_RECURSE
  "CMakeFiles/test_lrc_semantics.dir/test_lrc_semantics.cpp.o"
  "CMakeFiles/test_lrc_semantics.dir/test_lrc_semantics.cpp.o.d"
  "test_lrc_semantics"
  "test_lrc_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lrc_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
