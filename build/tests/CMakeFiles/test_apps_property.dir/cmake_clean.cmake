file(REMOVE_RECURSE
  "CMakeFiles/test_apps_property.dir/test_apps_property.cpp.o"
  "CMakeFiles/test_apps_property.dir/test_apps_property.cpp.o.d"
  "test_apps_property"
  "test_apps_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
