# Empty dependencies file for test_apps_property.
# This may be replaced when dependencies are built.
