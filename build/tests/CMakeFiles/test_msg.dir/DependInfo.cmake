
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_msg.cpp" "tests/CMakeFiles/test_msg.dir/test_msg.cpp.o" "gcc" "tests/CMakeFiles/test_msg.dir/test_msg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/vodsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/vodsm_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/vopp/CMakeFiles/vodsm_vopp.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/vodsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vodsm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
