# Empty dependencies file for test_dsm_core.
# This may be replaced when dependencies are built.
