file(REMOVE_RECURSE
  "CMakeFiles/test_dsm_core.dir/test_dsm_core.cpp.o"
  "CMakeFiles/test_dsm_core.dir/test_dsm_core.cpp.o.d"
  "test_dsm_core"
  "test_dsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
