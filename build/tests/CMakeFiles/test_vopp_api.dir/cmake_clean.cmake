file(REMOVE_RECURSE
  "CMakeFiles/test_vopp_api.dir/test_vopp_api.cpp.o"
  "CMakeFiles/test_vopp_api.dir/test_vopp_api.cpp.o.d"
  "test_vopp_api"
  "test_vopp_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vopp_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
