# Empty dependencies file for test_vopp_api.
# This may be replaced when dependencies are built.
