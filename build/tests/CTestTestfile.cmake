# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke "/root/repo/build/tests/smoke")
set_tests_properties(smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dsm_core "/root/repo/build/tests/test_dsm_core")
set_tests_properties(test_dsm_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vopp_api "/root/repo/build/tests/test_vopp_api")
set_tests_properties(test_vopp_api PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_msg "/root/repo/build/tests/test_msg")
set_tests_properties(test_msg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stress "/root/repo/build/tests/test_stress")
set_tests_properties(test_stress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lrc_semantics "/root/repo/build/tests/test_lrc_semantics")
set_tests_properties(test_lrc_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps_property "/root/repo/build/tests/test_apps_property")
set_tests_properties(test_apps_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_harness "/root/repo/build/tests/test_harness")
set_tests_properties(test_harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;vodsm_test;/root/repo/tests/CMakeLists.txt;0;")
