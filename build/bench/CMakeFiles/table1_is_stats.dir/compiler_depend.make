# Empty compiler generated dependencies file for table1_is_stats.
# This may be replaced when dependencies are built.
