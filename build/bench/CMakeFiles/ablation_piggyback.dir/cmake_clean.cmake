file(REMOVE_RECURSE
  "CMakeFiles/ablation_piggyback.dir/ablation_piggyback.cpp.o"
  "CMakeFiles/ablation_piggyback.dir/ablation_piggyback.cpp.o.d"
  "ablation_piggyback"
  "ablation_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
