# Empty dependencies file for ext_mpi_gap.
# This may be replaced when dependencies are built.
