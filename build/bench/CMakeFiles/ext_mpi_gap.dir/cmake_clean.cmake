file(REMOVE_RECURSE
  "CMakeFiles/ext_mpi_gap.dir/ext_mpi_gap.cpp.o"
  "CMakeFiles/ext_mpi_gap.dir/ext_mpi_gap.cpp.o.d"
  "ext_mpi_gap"
  "ext_mpi_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mpi_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
