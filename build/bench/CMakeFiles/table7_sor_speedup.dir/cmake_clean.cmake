file(REMOVE_RECURSE
  "CMakeFiles/table7_sor_speedup.dir/table7_sor_speedup.cpp.o"
  "CMakeFiles/table7_sor_speedup.dir/table7_sor_speedup.cpp.o.d"
  "table7_sor_speedup"
  "table7_sor_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sor_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
