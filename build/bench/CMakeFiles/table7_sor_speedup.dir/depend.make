# Empty dependencies file for table7_sor_speedup.
# This may be replaced when dependencies are built.
