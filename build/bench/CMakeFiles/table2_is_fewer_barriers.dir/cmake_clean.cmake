file(REMOVE_RECURSE
  "CMakeFiles/table2_is_fewer_barriers.dir/table2_is_fewer_barriers.cpp.o"
  "CMakeFiles/table2_is_fewer_barriers.dir/table2_is_fewer_barriers.cpp.o.d"
  "table2_is_fewer_barriers"
  "table2_is_fewer_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_is_fewer_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
