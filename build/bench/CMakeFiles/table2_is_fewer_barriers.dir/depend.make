# Empty dependencies file for table2_is_fewer_barriers.
# This may be replaced when dependencies are built.
