# Empty dependencies file for table9_nn_speedup.
# This may be replaced when dependencies are built.
