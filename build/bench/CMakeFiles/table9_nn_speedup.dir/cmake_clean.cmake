file(REMOVE_RECURSE
  "CMakeFiles/table9_nn_speedup.dir/table9_nn_speedup.cpp.o"
  "CMakeFiles/table9_nn_speedup.dir/table9_nn_speedup.cpp.o.d"
  "table9_nn_speedup"
  "table9_nn_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_nn_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
