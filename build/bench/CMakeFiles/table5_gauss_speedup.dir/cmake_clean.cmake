file(REMOVE_RECURSE
  "CMakeFiles/table5_gauss_speedup.dir/table5_gauss_speedup.cpp.o"
  "CMakeFiles/table5_gauss_speedup.dir/table5_gauss_speedup.cpp.o.d"
  "table5_gauss_speedup"
  "table5_gauss_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gauss_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
