file(REMOVE_RECURSE
  "CMakeFiles/table4_gauss_stats.dir/table4_gauss_stats.cpp.o"
  "CMakeFiles/table4_gauss_stats.dir/table4_gauss_stats.cpp.o.d"
  "table4_gauss_stats"
  "table4_gauss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gauss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
