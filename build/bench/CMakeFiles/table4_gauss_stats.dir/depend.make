# Empty dependencies file for table4_gauss_stats.
# This may be replaced when dependencies are built.
