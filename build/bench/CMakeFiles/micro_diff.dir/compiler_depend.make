# Empty compiler generated dependencies file for micro_diff.
# This may be replaced when dependencies are built.
