file(REMOVE_RECURSE
  "CMakeFiles/micro_diff.dir/micro_diff.cpp.o"
  "CMakeFiles/micro_diff.dir/micro_diff.cpp.o.d"
  "micro_diff"
  "micro_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
