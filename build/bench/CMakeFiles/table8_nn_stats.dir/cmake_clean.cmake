file(REMOVE_RECURSE
  "CMakeFiles/table8_nn_stats.dir/table8_nn_stats.cpp.o"
  "CMakeFiles/table8_nn_stats.dir/table8_nn_stats.cpp.o.d"
  "table8_nn_stats"
  "table8_nn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_nn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
