# Empty compiler generated dependencies file for table8_nn_stats.
# This may be replaced when dependencies are built.
