# Empty dependencies file for table6_sor_stats.
# This may be replaced when dependencies are built.
